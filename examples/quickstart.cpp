// Quickstart: build a random network, run the awake-optimal randomized
// MST algorithm, verify the answer, and look at the costs the paper is
// about.
//
//   $ ./quickstart [n] [seed]
#include <cstdlib>
#include <iostream>

#include "smst/graph/generators.h"
#include "smst/graph/mst_verify.h"
#include "smst/mst/api.h"
#include "smst/util/table.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  // A connected Erdos-Renyi network with distinct random edge weights.
  smst::Xoshiro256 rng(seed);
  auto graph = smst::MakeErdosRenyi(n, 8.0 / static_cast<double>(n), rng);
  std::cout << "network: n=" << graph.NumNodes() << " nodes, m="
            << graph.NumEdges() << " edges\n\n";

  // One call: every node runs Algorithm Randomized-MST in the sleeping
  // model; the returned edge set is what the nodes collectively marked.
  auto result =
      smst::ComputeMst(graph, smst::MstAlgorithm::kRandomized, {.seed = seed});

  auto check = smst::VerifyExactMst(graph, result.tree_edges);
  std::cout << "MST edges: " << result.tree_edges.size()
            << "  total weight: " << graph.TotalWeight(result.tree_edges)
            << "  verified vs Kruskal: " << (check.ok ? "OK" : check.error)
            << "\n\n";

  smst::Table t({"metric", "value", "paper bound"});
  t.AddRow({"awake complexity (max rounds any node is awake)",
            smst::Table::Num(result.stats.max_awake), "O(log n)"});
  t.AddRow({"node-averaged awake rounds",
            smst::Table::Num(result.stats.avg_awake, 2), ""});
  t.AddRow({"round complexity (run time)",
            smst::Table::Num(result.stats.rounds), "O(n log n)"});
  t.AddRow({"phases", smst::Table::Num(result.phases), "O(log n)"});
  t.AddRow({"messages sent", smst::Table::Num(result.stats.total_messages),
            ""});
  t.AddRow({"largest message (bits)",
            smst::Table::Num(result.stats.max_message_bits), "O(log n)"});
  t.Print(std::cout);

  std::cout << "\nA node sleeps through all but ~" << result.stats.max_awake
            << " of the " << result.stats.rounds
            << " rounds - that is the paper's point.\n";
  return check.ok ? 0 : 1;
}
