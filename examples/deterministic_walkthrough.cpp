// A traced walk through Algorithm Deterministic-MST (§2.3) on a small
// network: per-phase fragment counts, Blue fragments (the ones that merge
// away), and the final costs — the Appendix C story told by telemetry.
//
//   $ ./deterministic_walkthrough [n] [N] [seed]
#include <cstdlib>
#include <iostream>

#include "smst/graph/generators.h"
#include "smst/graph/mst_verify.h"
#include "smst/mst/deterministic_mst.h"
#include "smst/util/table.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 24;
  const std::uint64_t N = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;

  smst::Xoshiro256 rng(seed);
  smst::GeneratorOptions gopt;
  gopt.max_id = N;
  auto g = smst::MakeErdosRenyi(n, 3.0 / static_cast<double>(n), rng, gopt);
  std::cout << "network: n=" << n << " nodes with IDs drawn from [1, N=" << N
            << "], m=" << g.NumEdges() << " edges\n"
            << "(the deterministic algorithm's run time scales with N: its\n"
            << " Fast-Awake-Coloring sweeps one stage per possible ID)\n\n";

  auto r = smst::RunDeterministicMst(g, {.seed = seed});
  auto check = smst::VerifyExactMst(g, r.tree_edges);

  smst::Table t({"phase", "fragments at start", "Blue (merge away)",
                 "survivors <= "});
  for (std::uint64_t p = 1; p <= r.phases; ++p) {
    const auto frags = r.fragments_per_phase[p];
    const auto blue = r.blue_per_phase[p];
    t.AddRow({smst::Table::Num(p), smst::Table::Num(frags),
              smst::Table::Num(blue),
              smst::Table::Num(frags > blue ? frags - blue : 0)});
  }
  t.Print(std::cout);

  std::cout << "\nMST verified: " << (check.ok ? "OK" : check.error) << "\n"
            << "awake complexity: " << r.stats.max_awake << " (O(log n))\n"
            << "round complexity: " << r.stats.rounds << " (O(nN log n): each "
            << "phase spends 5N+23 blocks of 2n+1 rounds)\n"
            << "paper's worst-case phase budget for this n: "
            << smst::DeterministicPaperPhaseCount(n)
            << " phases - the measured " << r.phases
            << " shows how loose that constant is in practice.\n";
  return check.ok ? 0 : 1;
}
