// Figure 1 / Theorem 4 demo: the awake x round trade-off on the
// lower-bound family G_rc. We build the instance, check Observation 1
// (diameter Theta(c/log n)), encode a set-disjointness instance into MST
// weights, run the sleeping algorithm, read the SD answer back off the
// MST, and measure the congestion at the binary-tree bottleneck I that
// the Theorem 4 proof charges awake time for.
//
//   $ ./tradeoff_grc [rows] [cols] [seed]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "smst/graph/mst_reference.h"
#include "smst/graph/properties.h"
#include "smst/lower_bounds/grc.h"
#include "smst/lower_bounds/set_disjointness.h"
#include "smst/mst/randomized_mst.h"
#include "smst/util/table.h"

int main(int argc, char** argv) {
  const std::size_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 6;
  const std::size_t cols = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 5;

  smst::Xoshiro256 rng(seed);
  auto inst = smst::BuildGrc(rows, cols, rng);
  const std::size_t n = inst.graph.NumNodes();
  const auto diameter = smst::ExactDiameter(inst.graph);
  std::cout << "G_rc: r=" << rows << " rows x c=" << cols << " cols, n=" << n
            << ", |X|=" << inst.x_cols.size() << ", |I|="
            << inst.tree_internal.size() << "\n"
            << "Observation 1: hop diameter " << diameter << " ~ Theta(c/log n) = "
            << static_cast<double>(cols) /
                   std::log2(static_cast<double>(n))
            << " (rows are " << cols << " hops without the X highway)\n\n";

  smst::Table t({"SD instance", "disjoint?", "MST uses heavy edge?",
                 "readout", "awake", "rounds", "awake x rounds"});
  for (int trial = 0; trial < 4; ++trial) {
    auto sd = smst::RandomSdInstance(rows - 1, rng, trial % 2 == 0);
    auto enc = smst::EncodeCssAsMstWeights(inst, sd, rng);
    auto run = smst::RunRandomizedMst(enc.graph, {.seed = seed + trial});
    if (run.tree_edges != smst::KruskalMst(enc.graph)) {
      std::cerr << "MST mismatch\n";
      return 1;
    }
    const bool readout = smst::SdAnswerFromMst(enc, run.tree_edges);
    bool heavy_used = false;
    for (auto e : run.tree_edges) heavy_used |= !enc.marked[e];
    t.AddRow({"#" + std::to_string(trial + 1),
              sd.Disjoint() ? "yes" : "no", heavy_used ? "yes" : "no",
              readout == sd.Disjoint() ? "correct" : "WRONG",
              smst::Table::Num(run.stats.max_awake),
              smst::Table::Num(run.stats.rounds),
              smst::Table::Num(run.stats.max_awake * run.stats.rounds)});
  }
  t.Print(std::cout);

  std::cout
      << "\nTheorem 4: any algorithm with round complexity T in o(c) must\n"
         "push Omega(r) bits through the O(log n) tree nodes I, forcing\n"
         "awake complexity Omega(r/log^2 n); so awake x rounds is\n"
         "Omega-tilde(n). Our algorithm sits on the 'slow but barely\n"
         "awake' end of that frontier: rounds ~ n log n, awake ~ log n.\n";
  return 0;
}
