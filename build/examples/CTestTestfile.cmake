# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "64" "1")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_network "/root/repo/build/examples/sensor_network" "80" "2")
set_tests_properties(example_sensor_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ring_lower_bound "/root/repo/build/examples/ring_lower_bound" "169" "3")
set_tests_properties(example_ring_lower_bound PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tradeoff_grc "/root/repo/build/examples/tradeoff_grc" "4" "24" "4")
set_tests_properties(example_tradeoff_grc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_deterministic_walkthrough "/root/repo/build/examples/deterministic_walkthrough" "16" "32" "5")
set_tests_properties(example_deterministic_walkthrough PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_topology "/root/repo/build/examples/custom_topology")
set_tests_properties(example_custom_topology PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
