# Empty compiler generated dependencies file for ring_lower_bound.
# This may be replaced when dependencies are built.
