file(REMOVE_RECURSE
  "CMakeFiles/deterministic_walkthrough.dir/deterministic_walkthrough.cpp.o"
  "CMakeFiles/deterministic_walkthrough.dir/deterministic_walkthrough.cpp.o.d"
  "deterministic_walkthrough"
  "deterministic_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deterministic_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
