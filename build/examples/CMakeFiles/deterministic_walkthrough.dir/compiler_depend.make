# Empty compiler generated dependencies file for deterministic_walkthrough.
# This may be replaced when dependencies are built.
