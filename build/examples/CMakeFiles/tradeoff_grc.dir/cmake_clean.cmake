file(REMOVE_RECURSE
  "CMakeFiles/tradeoff_grc.dir/tradeoff_grc.cpp.o"
  "CMakeFiles/tradeoff_grc.dir/tradeoff_grc.cpp.o.d"
  "tradeoff_grc"
  "tradeoff_grc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tradeoff_grc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
