# Empty dependencies file for tradeoff_grc.
# This may be replaced when dependencies are built.
