
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smst/apps/tree_ops.cpp" "src/CMakeFiles/smst.dir/smst/apps/tree_ops.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/apps/tree_ops.cpp.o.d"
  "/root/repo/src/smst/energy/energy.cpp" "src/CMakeFiles/smst.dir/smst/energy/energy.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/energy/energy.cpp.o.d"
  "/root/repo/src/smst/graph/generators.cpp" "src/CMakeFiles/smst.dir/smst/graph/generators.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/graph/generators.cpp.o.d"
  "/root/repo/src/smst/graph/graph.cpp" "src/CMakeFiles/smst.dir/smst/graph/graph.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/graph/graph.cpp.o.d"
  "/root/repo/src/smst/graph/io.cpp" "src/CMakeFiles/smst.dir/smst/graph/io.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/graph/io.cpp.o.d"
  "/root/repo/src/smst/graph/mst_reference.cpp" "src/CMakeFiles/smst.dir/smst/graph/mst_reference.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/graph/mst_reference.cpp.o.d"
  "/root/repo/src/smst/graph/mst_verify.cpp" "src/CMakeFiles/smst.dir/smst/graph/mst_verify.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/graph/mst_verify.cpp.o.d"
  "/root/repo/src/smst/graph/properties.cpp" "src/CMakeFiles/smst.dir/smst/graph/properties.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/graph/properties.cpp.o.d"
  "/root/repo/src/smst/lower_bounds/grc.cpp" "src/CMakeFiles/smst.dir/smst/lower_bounds/grc.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/lower_bounds/grc.cpp.o.d"
  "/root/repo/src/smst/lower_bounds/ring_experiment.cpp" "src/CMakeFiles/smst.dir/smst/lower_bounds/ring_experiment.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/lower_bounds/ring_experiment.cpp.o.d"
  "/root/repo/src/smst/lower_bounds/set_disjointness.cpp" "src/CMakeFiles/smst.dir/smst/lower_bounds/set_disjointness.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/lower_bounds/set_disjointness.cpp.o.d"
  "/root/repo/src/smst/mst/api.cpp" "src/CMakeFiles/smst.dir/smst/mst/api.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/mst/api.cpp.o.d"
  "/root/repo/src/smst/mst/deterministic_mst.cpp" "src/CMakeFiles/smst.dir/smst/mst/deterministic_mst.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/mst/deterministic_mst.cpp.o.d"
  "/root/repo/src/smst/mst/ghs_congest.cpp" "src/CMakeFiles/smst.dir/smst/mst/ghs_congest.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/mst/ghs_congest.cpp.o.d"
  "/root/repo/src/smst/mst/randomized_mst.cpp" "src/CMakeFiles/smst.dir/smst/mst/randomized_mst.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/mst/randomized_mst.cpp.o.d"
  "/root/repo/src/smst/mst/result.cpp" "src/CMakeFiles/smst.dir/smst/mst/result.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/mst/result.cpp.o.d"
  "/root/repo/src/smst/mst/spanning_tree_bm.cpp" "src/CMakeFiles/smst.dir/smst/mst/spanning_tree_bm.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/mst/spanning_tree_bm.cpp.o.d"
  "/root/repo/src/smst/runtime/metrics.cpp" "src/CMakeFiles/smst.dir/smst/runtime/metrics.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/runtime/metrics.cpp.o.d"
  "/root/repo/src/smst/runtime/scheduler.cpp" "src/CMakeFiles/smst.dir/smst/runtime/scheduler.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/runtime/scheduler.cpp.o.d"
  "/root/repo/src/smst/runtime/simulator.cpp" "src/CMakeFiles/smst.dir/smst/runtime/simulator.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/runtime/simulator.cpp.o.d"
  "/root/repo/src/smst/sleeping/coloring.cpp" "src/CMakeFiles/smst.dir/smst/sleeping/coloring.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/sleeping/coloring.cpp.o.d"
  "/root/repo/src/smst/sleeping/ldt.cpp" "src/CMakeFiles/smst.dir/smst/sleeping/ldt.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/sleeping/ldt.cpp.o.d"
  "/root/repo/src/smst/sleeping/merging.cpp" "src/CMakeFiles/smst.dir/smst/sleeping/merging.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/sleeping/merging.cpp.o.d"
  "/root/repo/src/smst/sleeping/procedures.cpp" "src/CMakeFiles/smst.dir/smst/sleeping/procedures.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/sleeping/procedures.cpp.o.d"
  "/root/repo/src/smst/sleeping/schedule.cpp" "src/CMakeFiles/smst.dir/smst/sleeping/schedule.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/sleeping/schedule.cpp.o.d"
  "/root/repo/src/smst/util/args.cpp" "src/CMakeFiles/smst.dir/smst/util/args.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/util/args.cpp.o.d"
  "/root/repo/src/smst/util/fit.cpp" "src/CMakeFiles/smst.dir/smst/util/fit.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/util/fit.cpp.o.d"
  "/root/repo/src/smst/util/prng.cpp" "src/CMakeFiles/smst.dir/smst/util/prng.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/util/prng.cpp.o.d"
  "/root/repo/src/smst/util/stats.cpp" "src/CMakeFiles/smst.dir/smst/util/stats.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/util/stats.cpp.o.d"
  "/root/repo/src/smst/util/table.cpp" "src/CMakeFiles/smst.dir/smst/util/table.cpp.o" "gcc" "src/CMakeFiles/smst.dir/smst/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
