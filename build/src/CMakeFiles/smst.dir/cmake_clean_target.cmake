file(REMOVE_RECURSE
  "libsmst.a"
)
