# Empty dependencies file for smst.
# This may be replaced when dependencies are built.
