file(REMOVE_RECURSE
  "CMakeFiles/smst_cli.dir/smst_cli.cpp.o"
  "CMakeFiles/smst_cli.dir/smst_cli.cpp.o.d"
  "smst_cli"
  "smst_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smst_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
