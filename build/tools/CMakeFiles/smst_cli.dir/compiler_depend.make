# Empty compiler generated dependencies file for smst_cli.
# This may be replaced when dependencies are built.
