file(REMOVE_RECURSE
  "CMakeFiles/adaptive_blocks_test.dir/adaptive_blocks_test.cpp.o"
  "CMakeFiles/adaptive_blocks_test.dir/adaptive_blocks_test.cpp.o.d"
  "adaptive_blocks_test"
  "adaptive_blocks_test.pdb"
  "adaptive_blocks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_blocks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
