# Empty dependencies file for coloring_logstar_test.
# This may be replaced when dependencies are built.
