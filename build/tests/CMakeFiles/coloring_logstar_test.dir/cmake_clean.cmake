file(REMOVE_RECURSE
  "CMakeFiles/coloring_logstar_test.dir/coloring_logstar_test.cpp.o"
  "CMakeFiles/coloring_logstar_test.dir/coloring_logstar_test.cpp.o.d"
  "coloring_logstar_test"
  "coloring_logstar_test.pdb"
  "coloring_logstar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coloring_logstar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
