file(REMOVE_RECURSE
  "CMakeFiles/protocol_properties_test.dir/protocol_properties_test.cpp.o"
  "CMakeFiles/protocol_properties_test.dir/protocol_properties_test.cpp.o.d"
  "protocol_properties_test"
  "protocol_properties_test.pdb"
  "protocol_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
