# Empty compiler generated dependencies file for mst_detail_test.
# This may be replaced when dependencies are built.
