file(REMOVE_RECURSE
  "CMakeFiles/mst_detail_test.dir/mst_detail_test.cpp.o"
  "CMakeFiles/mst_detail_test.dir/mst_detail_test.cpp.o.d"
  "mst_detail_test"
  "mst_detail_test.pdb"
  "mst_detail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mst_detail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
