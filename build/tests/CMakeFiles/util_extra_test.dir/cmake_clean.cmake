file(REMOVE_RECURSE
  "CMakeFiles/util_extra_test.dir/util_extra_test.cpp.o"
  "CMakeFiles/util_extra_test.dir/util_extra_test.cpp.o.d"
  "util_extra_test"
  "util_extra_test.pdb"
  "util_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
