# Empty compiler generated dependencies file for sleeping_test.
# This may be replaced when dependencies are built.
