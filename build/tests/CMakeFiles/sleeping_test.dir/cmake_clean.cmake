file(REMOVE_RECURSE
  "CMakeFiles/sleeping_test.dir/sleeping_test.cpp.o"
  "CMakeFiles/sleeping_test.dir/sleeping_test.cpp.o.d"
  "sleeping_test"
  "sleeping_test.pdb"
  "sleeping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sleeping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
