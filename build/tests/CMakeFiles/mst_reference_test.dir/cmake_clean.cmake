file(REMOVE_RECURSE
  "CMakeFiles/mst_reference_test.dir/mst_reference_test.cpp.o"
  "CMakeFiles/mst_reference_test.dir/mst_reference_test.cpp.o.d"
  "mst_reference_test"
  "mst_reference_test.pdb"
  "mst_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mst_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
