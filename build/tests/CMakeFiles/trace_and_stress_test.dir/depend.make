# Empty dependencies file for trace_and_stress_test.
# This may be replaced when dependencies are built.
