# Empty compiler generated dependencies file for mst_algorithms_test.
# This may be replaced when dependencies are built.
