file(REMOVE_RECURSE
  "CMakeFiles/mst_algorithms_test.dir/mst_algorithms_test.cpp.o"
  "CMakeFiles/mst_algorithms_test.dir/mst_algorithms_test.cpp.o.d"
  "mst_algorithms_test"
  "mst_algorithms_test.pdb"
  "mst_algorithms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mst_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
