file(REMOVE_RECURSE
  "CMakeFiles/tree_ops_test.dir/tree_ops_test.cpp.o"
  "CMakeFiles/tree_ops_test.dir/tree_ops_test.cpp.o.d"
  "tree_ops_test"
  "tree_ops_test.pdb"
  "tree_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
