file(REMOVE_RECURSE
  "CMakeFiles/procedures_property_test.dir/procedures_property_test.cpp.o"
  "CMakeFiles/procedures_property_test.dir/procedures_property_test.cpp.o.d"
  "procedures_property_test"
  "procedures_property_test.pdb"
  "procedures_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procedures_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
