# Empty dependencies file for procedures_property_test.
# This may be replaced when dependencies are built.
