# Empty compiler generated dependencies file for merging_property_test.
# This may be replaced when dependencies are built.
