file(REMOVE_RECURSE
  "CMakeFiles/merging_property_test.dir/merging_property_test.cpp.o"
  "CMakeFiles/merging_property_test.dir/merging_property_test.cpp.o.d"
  "merging_property_test"
  "merging_property_test.pdb"
  "merging_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merging_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
