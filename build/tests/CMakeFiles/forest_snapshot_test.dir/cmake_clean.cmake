file(REMOVE_RECURSE
  "CMakeFiles/forest_snapshot_test.dir/forest_snapshot_test.cpp.o"
  "CMakeFiles/forest_snapshot_test.dir/forest_snapshot_test.cpp.o.d"
  "forest_snapshot_test"
  "forest_snapshot_test.pdb"
  "forest_snapshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forest_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
