# Empty dependencies file for forest_snapshot_test.
# This may be replaced when dependencies are built.
