# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/generators_test[1]_include.cmake")
include("/root/repo/build/tests/mst_reference_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/sleeping_test[1]_include.cmake")
include("/root/repo/build/tests/mst_algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/lower_bounds_test[1]_include.cmake")
include("/root/repo/build/tests/coloring_logstar_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_properties_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/util_extra_test[1]_include.cmake")
include("/root/repo/build/tests/merging_property_test[1]_include.cmake")
include("/root/repo/build/tests/forest_snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/trace_and_stress_test[1]_include.cmake")
include("/root/repo/build/tests/mst_detail_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_blocks_test[1]_include.cmake")
include("/root/repo/build/tests/graph_io_test[1]_include.cmake")
include("/root/repo/build/tests/procedures_property_test[1]_include.cmake")
include("/root/repo/build/tests/tree_ops_test[1]_include.cmake")
