file(REMOVE_RECURSE
  "CMakeFiles/bench_phase_cost.dir/bench/bench_phase_cost.cpp.o"
  "CMakeFiles/bench_phase_cost.dir/bench/bench_phase_cost.cpp.o.d"
  "bench/bench_phase_cost"
  "bench/bench_phase_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phase_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
