# Empty compiler generated dependencies file for bench_fragment_decay.
# This may be replaced when dependencies are built.
