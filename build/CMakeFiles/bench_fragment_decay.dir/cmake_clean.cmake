file(REMOVE_RECURSE
  "CMakeFiles/bench_fragment_decay.dir/bench/bench_fragment_decay.cpp.o"
  "CMakeFiles/bench_fragment_decay.dir/bench/bench_fragment_decay.cpp.o.d"
  "bench/bench_fragment_decay"
  "bench/bench_fragment_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fragment_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
