# Empty compiler generated dependencies file for bench_diameter_independence.
# This may be replaced when dependencies are built.
