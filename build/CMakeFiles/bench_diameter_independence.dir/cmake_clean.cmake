file(REMOVE_RECURSE
  "CMakeFiles/bench_diameter_independence.dir/bench/bench_diameter_independence.cpp.o"
  "CMakeFiles/bench_diameter_independence.dir/bench/bench_diameter_independence.cpp.o.d"
  "bench/bench_diameter_independence"
  "bench/bench_diameter_independence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diameter_independence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
