file(REMOVE_RECURSE
  "CMakeFiles/bench_termination_ablation.dir/bench/bench_termination_ablation.cpp.o"
  "CMakeFiles/bench_termination_ablation.dir/bench/bench_termination_ablation.cpp.o.d"
  "bench/bench_termination_ablation"
  "bench/bench_termination_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_termination_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
