# Empty dependencies file for bench_termination_ablation.
# This may be replaced when dependencies are built.
