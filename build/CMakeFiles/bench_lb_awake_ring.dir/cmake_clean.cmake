file(REMOVE_RECURSE
  "CMakeFiles/bench_lb_awake_ring.dir/bench/bench_lb_awake_ring.cpp.o"
  "CMakeFiles/bench_lb_awake_ring.dir/bench/bench_lb_awake_ring.cpp.o.d"
  "bench/bench_lb_awake_ring"
  "bench/bench_lb_awake_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lb_awake_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
