# Empty compiler generated dependencies file for bench_lb_awake_ring.
# This may be replaced when dependencies are built.
