file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_blocks.dir/bench/bench_adaptive_blocks.cpp.o"
  "CMakeFiles/bench_adaptive_blocks.dir/bench/bench_adaptive_blocks.cpp.o.d"
  "bench/bench_adaptive_blocks"
  "bench/bench_adaptive_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
