# Empty compiler generated dependencies file for bench_adaptive_blocks.
# This may be replaced when dependencies are built.
