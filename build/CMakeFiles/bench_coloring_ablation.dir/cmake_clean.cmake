file(REMOVE_RECURSE
  "CMakeFiles/bench_coloring_ablation.dir/bench/bench_coloring_ablation.cpp.o"
  "CMakeFiles/bench_coloring_ablation.dir/bench/bench_coloring_ablation.cpp.o.d"
  "bench/bench_coloring_ablation"
  "bench/bench_coloring_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coloring_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
