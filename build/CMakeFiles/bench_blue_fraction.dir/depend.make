# Empty dependencies file for bench_blue_fraction.
# This may be replaced when dependencies are built.
