file(REMOVE_RECURSE
  "CMakeFiles/bench_blue_fraction.dir/bench/bench_blue_fraction.cpp.o"
  "CMakeFiles/bench_blue_fraction.dir/bench/bench_blue_fraction.cpp.o.d"
  "bench/bench_blue_fraction"
  "bench/bench_blue_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blue_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
