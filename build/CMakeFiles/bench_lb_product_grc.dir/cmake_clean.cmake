file(REMOVE_RECURSE
  "CMakeFiles/bench_lb_product_grc.dir/bench/bench_lb_product_grc.cpp.o"
  "CMakeFiles/bench_lb_product_grc.dir/bench/bench_lb_product_grc.cpp.o.d"
  "bench/bench_lb_product_grc"
  "bench/bench_lb_product_grc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lb_product_grc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
