# Empty compiler generated dependencies file for bench_lb_product_grc.
# This may be replaced when dependencies are built.
