file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_awake.dir/bench/bench_table1_awake.cpp.o"
  "CMakeFiles/bench_table1_awake.dir/bench/bench_table1_awake.cpp.o.d"
  "bench/bench_table1_awake"
  "bench/bench_table1_awake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_awake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
