# Empty compiler generated dependencies file for bench_grc_structure.
# This may be replaced when dependencies are built.
