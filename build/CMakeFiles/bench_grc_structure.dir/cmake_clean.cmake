file(REMOVE_RECURSE
  "CMakeFiles/bench_grc_structure.dir/bench/bench_grc_structure.cpp.o"
  "CMakeFiles/bench_grc_structure.dir/bench/bench_grc_structure.cpp.o.d"
  "bench/bench_grc_structure"
  "bench/bench_grc_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grc_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
